// DNS poisoning survey: reproduces §3.2/§4.1 for the two state-run ISPs —
// discover every open resolver by scanning the ISPs' address space, query
// all potentially blocked websites through each, apply the paper's
// manipulation heuristics, and print the Figure 2 coverage/consistency
// metrics plus the tracer proof that this is poisoning, not injection.
// A closing campaign runs the uniform per-domain DNS detector from both
// vantages in parallel for the JSONL-shaped view of the same censorship.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/censor"
	"repro/internal/probe"
)

func main() {
	ctx := context.Background()
	sess, err := censor.NewSession(ctx,
		censor.WithScenario(censor.MustLookupScenario("small")), censor.WithVantages("MTNL", "BSNL"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dns_poisoning: %v\n", err)
		os.Exit(1)
	}
	w := sess.World()

	for _, name := range []string{"MTNL", "BSNL"} {
		isp := w.ISP(name)
		v := censor.MustVantage(sess, name)
		p := v.Probe()

		control := w.Catalog.AlexaDomains()[0]
		resolvers := p.DiscoverResolvers(control)
		fmt.Printf("== %s ==\n", name)
		fmt.Printf("  open resolvers discovered: %d\n", len(resolvers))

		scan := p.ScanResolvers(resolvers, w.Catalog.PBWDomains())
		fmt.Printf("  censorious resolvers:      %d (coverage %.1f%%)\n",
			len(scan.BlockedBy), 100*scan.Coverage)
		fmt.Printf("  blocked domains (union):   %d\n", len(scan.BlockedDomains))
		fmt.Printf("  consistency:               %.1f%%\n", 100*scan.Consistency)

		// Poisoning vs injection: the DNS tracer.
		if len(scan.BlockedDomains) > 0 {
			victim := scan.BlockedDomains[0]
			tr := probe.IterativeTraceDNS(isp.Client, isp.DefaultResolver, victim, time.Second)
			fmt.Printf("  tracer: manipulated answer for %s at hop %d/%d", victim, tr.AnswerHop, tr.ResolverHop)
			if tr.Injected {
				fmt.Println("  -> on-path injection")
			} else {
				fmt.Println("  -> resolver poisoning")
			}
		}
		fmt.Println()
	}

	// The same finding through the uniform API: the per-domain DNS
	// detector against each ISP's default resolver, both vantages in
	// parallel, stable output order.
	stream, err := sess.Run(ctx, censor.Campaign{
		Domains:      sess.PBWDomains()[:40],
		Measurements: []censor.Measurement{censor.DNS()},
	}, censor.WithWorkers(2))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dns_poisoning: %v\n", err)
		os.Exit(1)
	}
	poisoned := map[string]int{}
	for res := range stream.Results() {
		if res.Blocked {
			poisoned[res.Vantage]++
		}
	}
	fmt.Printf("campaign over the first 40 PBWs: default resolver poisons %d (MTNL) / %d (BSNL)\n",
		poisoned["MTNL"], poisoned["BSNL"])

	fmt.Println("\nEvasion: any non-poisoned resolver bypasses this entirely (§5);")
	fmt.Println("resolve via the public resolver at the control vantage instead.")
}
