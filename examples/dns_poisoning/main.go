// DNS poisoning survey: reproduces §3.2/§4.1 for the two state-run ISPs —
// discover every open resolver by scanning the ISPs' address space, query
// all potentially blocked websites through each, apply the paper's
// manipulation heuristics, and print the Figure 2 coverage/consistency
// metrics plus the tracer proof that this is poisoning, not injection.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/probe"
)

func main() {
	w := core.NewWorld(core.SmallWorldConfig())

	for _, name := range []string{"MTNL", "BSNL"} {
		isp := w.ISP(name)
		p := core.NewProbe(w, name)

		control := w.Catalog.AlexaDomains()[0]
		resolvers := p.DiscoverResolvers(control)
		fmt.Printf("== %s ==\n", name)
		fmt.Printf("  open resolvers discovered: %d\n", len(resolvers))

		scan := p.ScanResolvers(resolvers, w.Catalog.PBWDomains())
		fmt.Printf("  censorious resolvers:      %d (coverage %.1f%%)\n",
			len(scan.BlockedBy), 100*scan.Coverage)
		fmt.Printf("  blocked domains (union):   %d\n", len(scan.BlockedDomains))
		fmt.Printf("  consistency:               %.1f%%\n", 100*scan.Consistency)

		// Poisoning vs injection: the DNS tracer.
		if len(scan.BlockedDomains) > 0 {
			victim := scan.BlockedDomains[0]
			tr := probe.IterativeTraceDNS(isp.Client, isp.DefaultResolver, victim, time.Second)
			fmt.Printf("  tracer: manipulated answer for %s at hop %d/%d", victim, tr.AnswerHop, tr.ResolverHop)
			if tr.Injected {
				fmt.Println("  -> on-path injection")
			} else {
				fmt.Println("  -> resolver poisoning")
			}
		}
		fmt.Println()
	}

	fmt.Println("Evasion: any non-poisoned resolver bypasses this entirely (§5);")
	fmt.Println("resolve via the public resolver at the control vantage instead.")
}
