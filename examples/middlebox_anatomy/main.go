// Middlebox anatomy: reproduces the paper's §3.4/§4.2.1 protocol-level
// experiments — what triggers censorship, whether the boxes are stateful,
// and the packet-level difference between interceptive (Figure 3) and
// wiretap (Figure 4) middleboxes, observed from both the client and a
// remote server under our control.
package main

import (
	"context"
	"fmt"
	"os"

	"repro/censor"
	"repro/internal/experiments"
	"repro/internal/websim"
)

func main() {
	sess, err := censor.NewSession(context.Background(), censor.WithScenario(censor.MustLookupScenario("small")))
	if err != nil {
		fmt.Fprintf(os.Stderr, "middlebox_anatomy: %v\n", err)
		os.Exit(1)
	}
	s := experiments.NewSuiteWith(sess, experiments.QuickOptions())
	w := s.World

	// Trigger-localization battery in Idea (interceptive, overt).
	isp := w.ISP("Idea")
	v := censor.MustVantage(sess, "Idea")
	p := v.Probe()
	var domain string
	var site *websim.Site
	for _, d := range isp.HTTPList {
		st, ok := w.Catalog.Site(d)
		if !ok || st.Kind != websim.KindNormal {
			continue
		}
		if tr := w.TruthFor(isp, d); tr.HTTPFiltered {
			domain, site = d, st
			break
		}
	}
	if domain == "" {
		fmt.Println("no blocked domain on the Idea client's paths")
		return
	}
	fmt.Printf("== §3.4 trigger experiments (Idea, %s) ==\n", domain)
	rep := p.TriggerExperiments(domain, site.Addr(websim.RegionIN))
	fmt.Printf("  censored at TTL n-1 (request never reaches site): %v\n", rep.CensoredAtTTLBelowServer)
	fmt.Printf("  censored at TTL n   (request delivered):          %v\n", rep.CensoredAtFullTTL)
	fmt.Printf("  'HOst:' case mutation evades:                     %v  -> middlebox inspects requests only\n", rep.HostCaseEvades)
	fmt.Printf("  censored domain outside Host field ignored:       %v\n", rep.HostFieldOnly)
	fmt.Printf("  SYN-only flow triggers:                           %v\n", rep.SYNOnlyTriggers)
	fmt.Printf("  handshake-less GET triggers:                      %v\n", rep.NoHandshakeTriggers)
	fmt.Printf("  full handshake + GET triggers (control):          %v\n", rep.HandshakeThenTriggers)
	fmt.Printf("  state expires after 4 idle minutes:               %v\n", rep.StateExpiresAfterIdle)
	fmt.Printf("  state refreshed by keepalive traffic:             %v\n", rep.StateRefreshedByTraffic)

	// Packet-level traces for both middlebox families.
	fmt.Println()
	fmt.Print(experiments.RenderFigureTrace("== Figure 3: interceptive middlebox ==", s.Figure3()))
	fmt.Println()
	fmt.Print(experiments.RenderFigureTrace("== Figure 4: wiretap middlebox ==", s.Figure4()))
}
