// Observatory: drive the monitor layer in-process, no HTTP — a Store
// fed by a Scheduler, then the query surface censord serves: run
// summaries straight from write-time roll-ups, filtered raw results
// from the bounded rings, and the blocked-domain churn between two runs
// (the longitudinal view the paper's one-shot campaigns could not take).
package main

import (
	"context"
	"fmt"
	"os"

	"repro/censor"
	"repro/monitor"
)

func main() {
	ctx := context.Background()

	// The store bounds memory on both axes: raw results per
	// (scenario, vantage, measurement) ring, roll-ups per retained run.
	store := monitor.NewStore(monitor.WithRingSize(256), monitor.WithRunRetention(16))

	// One on-demand job (Every: 0). A real deployment sets Every/Jitter
	// and hands sched.Run(ctx) a long-lived context; here we fire runs by
	// hand to keep the output deterministic.
	sched, err := monitor.NewScheduler(ctx, store, monitor.Job{
		Name:     "survey",
		Scenario: censor.MustLookupScenario("small"),
		Campaign: censor.Campaign{
			Measurements: []censor.Measurement{censor.DNS(), censor.HTTP()},
		},
		DomainCap: 40,
		Workers:   4,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "observatory: %v\n", err)
		os.Exit(1)
	}

	// Epoch 1: the scheduler runs the campaign on its pooled session and
	// ingests the stream into the store.
	first, err := sched.RunOnce(ctx, "survey")
	if err != nil {
		fmt.Fprintf(os.Stderr, "observatory: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("run %d: %d results, %d blocked\n\n", first.Run, first.Results, first.Blocked)

	// Summaries never scan raw results — they are folded at write time,
	// with the exact rendering a drained censor.AggregateSink produces.
	if text, ok := store.SummaryText(first.Run); ok {
		fmt.Print(text)
	}

	// Epoch 2: in a live deployment the world (and its blocklists) would
	// have moved between firings; here we push a synthetic follow-up run
	// in which one domain was unblocked and another newly blocked, the
	// shape a real blocklist update leaves behind.
	var churned []censor.Result
	seen := false
	for _, r := range store.Results(monitor.Query{Run: first.Run, Vantage: "Idea", Measurement: "http"}) {
		res := r.Result
		if res.Blocked && !seen {
			res.Blocked = false // the censor dropped this entry...
			res.Mechanism = ""
			res.Censor = ""
			seen = true
		}
		churned = append(churned, res)
	}
	churned = append(churned, censor.Result{
		Vantage: "Idea", Measurement: "http", Domain: "newly-listed.example",
		Blocked: true, Mechanism: censor.MechanismNotification, Censor: "Idea",
	})
	sink := store.Begin("small", "replay")
	for _, r := range churned {
		sink.Write(r) //nolint:errcheck // open run, synthetic data
	}
	sink.Flush() //nolint:errcheck

	// Delta-since-run: per-vantage blocked-domain churn between epochs.
	delta, err := store.DeltaSince(first.Run, sink.Run())
	if err != nil {
		fmt.Fprintf(os.Stderr, "observatory: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nblocklist churn, run %d -> run %d:\n", delta.From, delta.To)
	for _, vd := range delta.Vantages {
		if vd.Vantage != "Idea" {
			continue // other vantages differ only because run 2 replayed Idea alone
		}
		fmt.Printf("  %-8s added=%v removed=%v\n", vd.Vantage, vd.Added, vd.Removed)
	}

	// The raw rings answer targeted queries: the latest blocked verdicts.
	fmt.Println("\nlatest blocked verdicts at Idea:")
	for _, r := range store.Results(monitor.Query{Vantage: "Idea", BlockedOnly: true, Latest: 3}) {
		fmt.Printf("  run %d  %-24s %s\n", r.Run, r.Domain, r.Mechanism)
	}
}
