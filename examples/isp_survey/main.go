// ISP survey: the condensed nine-ISP study — OONI accuracy (Table 1), HTTP
// filtering coverage and middlebox types (Table 2), DNS censorship
// (Figure 2), collateral damage (Table 3), and the evasion matrix (§5) —
// on the reduced world so it completes in seconds. The suite runs on a
// censor session; run cmd/censorscan without -quick for the paper-scale
// numbers, or with -campaign for the raw JSONL records.
package main

import (
	"context"
	"fmt"
	"os"

	"repro/censor"
	"repro/internal/experiments"
)

func main() {
	sess, err := censor.NewSession(context.Background(), censor.WithScenario(censor.MustLookupScenario("small")))
	if err != nil {
		fmt.Fprintf(os.Stderr, "isp_survey: %v\n", err)
		os.Exit(1)
	}
	s := experiments.NewSuiteWith(sess, experiments.QuickOptions())

	fmt.Print(experiments.RenderTable1(s.Table1(experiments.OONITargets)))
	fmt.Println()
	fmt.Print(experiments.RenderTable2(s.Table2()))
	fmt.Println()
	fmt.Print(experiments.RenderFigure5(s.Figure5()))
	fmt.Println()
	fmt.Print(experiments.RenderFigure2(s.Figure2()))
	fmt.Println()
	fmt.Print(experiments.RenderTable3(s.Table3()))
	fmt.Println()
	fmt.Print(experiments.RenderSection5(s.Section5()))
}
