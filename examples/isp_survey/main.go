// ISP survey: the condensed nine-ISP study — OONI accuracy (Table 1), HTTP
// filtering coverage and middlebox types (Table 2), DNS censorship
// (Figure 2), collateral damage (Table 3), and the evasion matrix (§5) —
// on the reduced world so it completes in seconds. Run cmd/censorscan
// without -quick for the paper-scale numbers.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	s := core.NewSuite(core.QuickSuiteOptions())

	fmt.Print(experiments.RenderTable1(s.Table1(experiments.OONITargets)))
	fmt.Println()
	fmt.Print(experiments.RenderTable2(s.Table2()))
	fmt.Println()
	fmt.Print(experiments.RenderFigure5(s.Figure5()))
	fmt.Println()
	fmt.Print(experiments.RenderFigure2(s.Figure2()))
	fmt.Println()
	fmt.Print(experiments.RenderTable3(s.Table3()))
	fmt.Println()
	fmt.Print(experiments.RenderSection5(s.Section5()))
}
