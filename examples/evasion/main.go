// Evasion walk-through: dissects one §5 technique at the byte level for
// each middlebox family — showing the exact request bytes, why the
// middlebox matcher misses them, and the responses the genuine server
// returns.
package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"repro/censor"
	"repro/internal/anticensor"
	"repro/internal/middlebox"
	"repro/internal/websim"
)

func main() {
	sess, err := censor.NewSession(context.Background(), censor.WithScenario(censor.MustLookupScenario("small")))
	if err != nil {
		fmt.Fprintf(os.Stderr, "evasion: %v\n", err)
		os.Exit(1)
	}
	w := sess.World()

	demos := []struct {
		isp  string
		tech anticensor.Technique
		why  string
	}{
		{"Airtel", anticensor.TechHostCase, "wiretap boxes match the literal keyword 'Host'; RFC 2616 servers are case-insensitive"},
		{"Airtel", anticensor.TechDropFINRST, "Airtel's injected packets carry IP-ID 242; a local filter drops them and the real response renders"},
		{"Idea", anticensor.TechExtraSpace, "overt interceptive boxes require exactly one space after 'Host:'; servers strip LWS"},
		{"Vodafone", anticensor.TechMultiHost, "covert interceptive boxes match only the LAST Host header; servers use the first"},
		{"Jio", anticensor.TechSegmented, "per-packet matchers never see a Host line split across TCP segments"},
	}

	for _, demo := range demos {
		isp := w.ISP(demo.isp)
		v := censor.MustVantage(sess, demo.isp)
		p := v.Probe()
		var domain string
		for _, d := range isp.HTTPList {
			site, ok := w.Catalog.Site(d)
			if !ok || site.Kind != websim.KindNormal {
				continue
			}
			if tr := w.TruthFor(isp, d); tr.HTTPFiltered {
				domain = d
				break
			}
		}
		if domain == "" {
			fmt.Printf("== %s vs %s: skipped (no blocked domain on this client's paths in the reduced world) ==\n\n", demo.tech, demo.isp)
			continue
		}
		fmt.Printf("== %s vs %s ==\n", demo.tech, demo.isp)
		fmt.Printf("   why it works: %s\n", demo.why)

		if req, ok := anticensor.CraftRequest(demo.tech, domain); ok {
			fmt.Printf("   crafted request: %q\n", string(req))
			if host, matched := middlebox.ExtractHost(req, isp.Censor.String() == "interceptive-covert"); matched {
				fmt.Printf("   middlebox matcher sees host: %q\n", host)
			} else {
				fmt.Println("   middlebox matcher sees: nothing")
			}
		}

		// Baseline: the plain request is censored (retry for WM races).
		censored := false
		for i := 0; i < 5 && !censored; i++ {
			fr, err := p.FetchDirect(domain)
			if err == nil {
				censored = fr.Notification || (fr.Reset && len(fr.Responses) == 0)
			}
		}
		fmt.Printf("   plain GET censored: %v\n", censored)

		ok := false
		for i := 0; i < 3 && !ok; i++ {
			ok = anticensor.Evade(p, demo.tech, domain).Success
		}
		fmt.Printf("   evasion succeeded:  %v\n\n", ok)
	}

	// And the full matrix on one ISP, through the public Evasion
	// measurement this time: one Result per domain, the per-technique
	// outcomes in its typed EvasionDetail.
	isp := w.ISP("Idea")
	var blocked []string
	for _, d := range isp.HTTPList {
		site, ok := w.Catalog.Site(d)
		if !ok || site.Kind != websim.KindNormal {
			continue
		}
		if tr := w.TruthFor(isp, d); tr.HTTPFiltered {
			blocked = append(blocked, d)
		}
		if len(blocked) == 3 {
			break
		}
	}
	results, err := sess.Measure(context.Background(), "Idea", censor.Evasion(), blocked...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evasion: %v\n", err)
		os.Exit(1)
	}
	// Denominator: domains actually censored at baseline (the ones that
	// carry an EvasionDetail) — the matrix rows the paper reports.
	censored, evaded, success := 0, 0, map[string]int{}
	for _, r := range results {
		det, ok := censor.DetailAs[censor.EvasionDetail](r)
		if !ok {
			continue
		}
		censored++
		if det.Evaded {
			evaded++
		}
		for _, t := range det.Techniques {
			if t.Success {
				success[t.Technique]++
			}
		}
	}
	fmt.Printf("== full matrix, Idea: evaded %d/%d censored domains ==\n", evaded, censored)
	var lines []string
	for _, t := range anticensor.AllTechniques {
		lines = append(lines, fmt.Sprintf("   %-24s %d/%d", t, success[string(t)], censored))
	}
	fmt.Println(strings.Join(lines, "\n"))
}
