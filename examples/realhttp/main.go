// Real sockets against the simulated censors: netbridge seats actual Go
// networking code on simulated vantage hosts, so an unmodified
// net/http.Client experiences India's 2018 censorship exactly as the
// paper's probes did. Two demonstrations: (1) an HTTP GET from an Idea
// subscriber to a blocklisted domain, answered by the interceptive
// middlebox's block page; (2) a DNS lookup through MTNL's poisoned
// default resolver, whose forged answer leads to an address that never
// completes a TCP handshake. The whole exchange is captured to
// realhttp.pcap — virtual timestamps, openable in Wireshark — and the
// bridge pump's timeline (engine leases, dial handshakes) is exported to
// realhttp.trace.json, loadable in Perfetto or chrome://tracing on the
// same virtual timebase as the pcap.
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/censor"
	"repro/internal/ispnet"
	"repro/netbridge"
	"repro/obs"
)

// blockPageMarker is the Idea middlebox's notification text (paper §5,
// style B: "blocked under instructions of a competent Government
// Authority").
const blockPageMarker = "This URL has been blocked under instructions of a"

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "realhttp: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	sess, err := censor.NewSession(ctx,
		censor.WithScenario(censor.MustLookupScenario("paper-2018")))
	if err != nil {
		return err
	}

	// Consult the ground-truth oracle before the bridge opens: the bridge
	// holds the session's world for its lifetime.
	w := sess.World()
	blocked := filteredDomain(w, "Idea")
	poisonedISP, poisonedDomain := poisonedLookup(w)
	if blocked == "" || poisonedISP == "" {
		return fmt.Errorf("scenario %q lost its censored domains", "paper-2018")
	}

	// The tracer's clock is bound to the world engine by WithTrace, so its
	// spans share the pcap's virtual timebase.
	tracer := obs.NewTracer(nil)
	bridge, err := netbridge.New(sess, netbridge.WithTrace(tracer))
	if err != nil {
		return err
	}
	defer bridge.Close()

	// 1: unmodified net/http.Client behind an Idea subscriber line.
	dialer, err := bridge.Dialer("Idea")
	if err != nil {
		return err
	}
	pcapFile, err := os.Create("realhttp.pcap")
	if err != nil {
		return err
	}
	defer pcapFile.Close()
	sink, err := netbridge.NewPcapSink(pcapFile)
	if err != nil {
		return err
	}
	if err := dialer.CaptureTo(sink); err != nil {
		return err
	}

	client := &http.Client{
		Transport: &http.Transport{
			DialContext:       dialer.DialContext,
			DisableKeepAlives: true,
		},
		Timeout: 30 * time.Second,
	}
	fmt.Printf("== GET http://%s/ from an Idea subscriber ==\n", blocked)
	resp, err := client.Get("http://" + blocked + "/")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Printf("  status: %s  (%d bytes, served by %s)\n", resp.Status, len(body), resp.Header.Get("Server"))
	if strings.Contains(string(body), blockPageMarker) {
		fmt.Printf("  body:   middlebox block page — %q...\n", blockPageMarker)
	} else {
		fmt.Printf("  body:   genuine content (censor missed?)\n")
	}

	// 2: the poisoned default resolver, through the same real-socket path.
	fmt.Printf("\n== resolving %s via %s's default resolver ==\n", poisonedDomain, poisonedISP)
	pd, err := bridge.Dialer(poisonedISP)
	if err != nil {
		return err
	}
	addrs, err := pd.Resolve(ctx, poisonedDomain)
	if err != nil {
		return err
	}
	fmt.Printf("  answer:   %v (ISP block address %v)\n", addrs, w.ISP(poisonedISP).BlockIP)
	dialCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := pd.DialContext(dialCtx, "tcp", addrs[0].String()+":80"); err != nil {
		fmt.Printf("  dialing it: %v\n", err)
	} else {
		fmt.Printf("  dialing it: unexpectedly connected\n")
	}

	packets, err := sink.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("\nwrote realhttp.pcap: %d packets from the Idea client's wire\n", packets)

	traceFile, err := os.Create("realhttp.trace.json")
	if err != nil {
		return err
	}
	defer traceFile.Close()
	if err := tracer.WriteChromeTrace(traceFile); err != nil {
		return err
	}
	fmt.Printf("wrote realhttp.trace.json: %d pump spans (virtual time)\n", tracer.Len())
	return nil
}

// filteredDomain returns a potentially-blocked domain the named ISP's
// middlebox filters over HTTP, per the world's ground-truth oracle.
func filteredDomain(w *ispnet.World, ispName string) string {
	isp := w.ISP(ispName)
	for _, d := range w.Catalog.PBWDomains() {
		if w.TruthFor(isp, d).HTTPFiltered {
			return d
		}
	}
	return ""
}

// poisonedLookup finds a DNS-censoring ISP whose default resolver forges
// answers for some blocklisted domain, and returns both.
func poisonedLookup(w *ispnet.World) (ispName, domain string) {
	for _, name := range []string{"MTNL", "BSNL"} {
		isp := w.ISP(name)
		for _, r := range isp.Resolvers {
			if r.Addr() != isp.DefaultResolver {
				continue
			}
			for _, d := range w.Catalog.PBWDomains() {
				if r.PoisonsDomain(d) {
					return name, d
				}
			}
		}
	}
	return "", ""
}
