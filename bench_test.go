package repro

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/httpwire"
	"repro/internal/ispnet"
	"repro/internal/middlebox"
	"repro/internal/probe"
	"repro/internal/websim"
)

// The benchmark harness regenerates every table and figure of the paper's
// evaluation at full scale (1200 PBWs, Alexa destinations, 40 vantage
// points) and prints the measured rows next to the paper's. Absolute
// precision/recall and coverage values are expected to land near the
// paper's; shapes (who wins, zero cells, orderings) must match.

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func fullSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		opt := experiments.DefaultOptions()
		if testing.Short() {
			opt = experiments.QuickOptions()
		}
		suite = experiments.NewSuite(opt)
	})
	return suite
}

// printOnce guards experiment output across benchmark calibration reruns.
var printed sync.Map

func printResult(key, out string) {
	if _, dup := printed.LoadOrStore(key, true); !dup {
		fmt.Println(out)
	}
}

// BenchmarkTable1OONIAccuracy regenerates Table 1: OONI precision/recall
// per ISP. Paper: MTNL (.57,.42), Airtel (.19,.11), Idea (.57,.62),
// Vodafone (.69,.82), Jio (.34,.15); TCP column all zeros.
func BenchmarkTable1OONIAccuracy(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows := s.Table1(experiments.OONITargets)
		printResult("table1", experiments.RenderTable1(rows))
		for _, r := range rows {
			if r.ISP == "Airtel" {
				b.ReportMetric(r.Total.Precision, "airtel-precision")
				b.ReportMetric(r.Total.Recall, "airtel-recall")
			}
		}
	}
}

// BenchmarkTable2HTTPFiltering regenerates Table 2: coverage within/outside,
// middlebox type and blocked counts. Paper: Airtel 75.2/54.2 WM 234; Idea
// 92/90 IM 338; Vodafone 11/2.5 IM 483; Jio 6.4/0 WM 200.
func BenchmarkTable2HTTPFiltering(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows := s.Table2()
		printResult("table2", experiments.RenderTable2(rows))
		for _, r := range rows {
			switch r.ISP {
			case "Idea":
				b.ReportMetric(r.WithinCoverage, "idea-within-%")
			case "Jio":
				b.ReportMetric(r.OutsideCoverage, "jio-outside-%")
			}
		}
	}
}

// BenchmarkFigure5MiddleboxConsistency regenerates Figure 5 from the same
// scan. Paper consistency: Idea 76.8%, Airtel 12.3%, Vodafone 11.6%.
func BenchmarkFigure5MiddleboxConsistency(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows := s.Figure5()
		printResult("figure5", experiments.RenderFigure5(rows))
		for _, r := range rows {
			b.ReportMetric(r.Consistency, r.ISP+"-consistency-%")
		}
	}
}

// BenchmarkFigure2DNSConsistency regenerates Figure 2 / §4.1. Paper: MTNL
// coverage 77%, consistency 42.4%; BSNL coverage 9.3%, consistency 7.5%.
func BenchmarkFigure2DNSConsistency(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows := s.Figure2()
		printResult("figure2", experiments.RenderFigure2(rows))
		for _, r := range rows {
			b.ReportMetric(100*r.Scan.Coverage, r.ISP+"-coverage-%")
			b.ReportMetric(100*r.Scan.Consistency, r.ISP+"-consistency-%")
		}
	}
}

// BenchmarkTable3CollateralDamage regenerates Table 3. Paper: NKN <-
// Vodafone 69 + TATA 8; Sify <- TATA 142 + Airtel 2; Siti <- Airtel 110;
// MTNL <- Airtel 25 + TATA 134; BSNL <- Airtel 1 + TATA 156.
func BenchmarkTable3CollateralDamage(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows := s.Table3()
		printResult("table3", experiments.RenderTable3(rows))
		for _, r := range rows {
			if r.ISP == "NKN" {
				b.ReportMetric(float64(r.Result.ByNeighbor["Vodafone"]), "nkn-via-vodafone")
			}
		}
	}
}

// BenchmarkFigure1IterativeTracer regenerates the Figure 1 demonstration:
// ICMP per hop until the censorship response appears at the middlebox hop.
func BenchmarkFigure1IterativeTracer(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		r := s.Figure1()
		printResult("figure1", experiments.RenderFigure1(r))
		if r.Trace != nil {
			b.ReportMetric(float64(r.Trace.CensorHop), "censor-hop")
		}
	}
}

// BenchmarkFigure3InterceptiveTrace regenerates the Figure 3 packet
// exchange: notification+FIN to the client, middlebox RST to the server,
// blackholed teardown.
func BenchmarkFigure3InterceptiveTrace(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		tr := s.Figure3()
		printResult("figure3", experiments.RenderFigureTrace("Figure 3: interceptive middlebox", tr))
	}
}

// BenchmarkFigure4WiretapTrace regenerates the Figure 4 packet exchange:
// forged FIN+PSH then RST, with the genuine response arriving late.
func BenchmarkFigure4WiretapTrace(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		tr := s.Figure4()
		printResult("figure4", experiments.RenderFigureTrace("Figure 4: wiretap middlebox", tr))
	}
}

// BenchmarkSection5AntiCensorship regenerates the §5 claim: every blocked
// site in every ISP is bypassable without third-party tools.
func BenchmarkSection5AntiCensorship(b *testing.B) {
	s := fullSuite(b)
	for i := 0; i < b.N; i++ {
		rows := s.Section5()
		printResult("section5", experiments.RenderSection5(rows))
		evaded, tried := 0, 0
		for _, r := range rows {
			evaded += r.Matrix.AnyPerDomain
			tried += r.Matrix.Tried
		}
		if tried > 0 {
			b.ReportMetric(100*float64(evaded)/float64(tried), "evaded-%")
		}
	}
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationWMRace sweeps the wiretap race-loss probability and
// reports the page-render rate on a blocked site (paper: ~3 in 10).
func BenchmarkAblationWMRace(b *testing.B) {
	for _, loss := range []float64{0, 0.3, 0.6} {
		loss := loss
		b.Run(fmt.Sprintf("loss=%.1f", loss), func(b *testing.B) {
			cfg := ispnet.SmallConfig()
			for i := range cfg.Profiles {
				if cfg.Profiles[i].Name == "Airtel" {
					cfg.Profiles[i].WMLossProb = loss
				}
			}
			w := ispnet.NewWorld(cfg)
			isp := w.ISP("Airtel")
			domain, dst := findBlockedPair(w, isp)
			if domain == "" {
				b.Skip("no blocked pair at this scale")
			}
			renders := 0
			total := 0
			for i := 0; i < b.N; i++ {
				for j := 0; j < 20; j++ {
					fr := probe.GetFrom(isp.Client, dst, domain, nil, 2*time.Second)
					total++
					if len(fr.Responses) > 0 && fr.Responses[0].StatusCode != 0 && !fr.Notification {
						renders++
					}
				}
			}
			b.ReportMetric(100*float64(renders)/float64(total), "render-%")
		})
	}
}

// BenchmarkAblationConsistency sweeps the per-box blocklist sharing factor
// and reports the measured Figure 5 consistency — the design knob that
// separates Idea (76.8%) from Airtel (12.3%).
func BenchmarkAblationConsistency(b *testing.B) {
	for _, s := range []float64{0.1, 0.4, 0.8} {
		s := s
		b.Run(fmt.Sprintf("s=%.1f", s), func(b *testing.B) {
			cfg := ispnet.SmallConfig()
			for i := range cfg.Profiles {
				if cfg.Profiles[i].Name == "Idea" {
					cfg.Profiles[i].Consistency = s
				}
			}
			w := ispnet.NewWorld(cfg)
			p := probe.New(w, w.ISP("Idea"))
			scan := probe.ScanConfig{Paths: 24, SampleURLs: 0, Attempts: 1, PerURLTimeout: 600 * time.Millisecond}
			for i := 0; i < b.N; i++ {
				res := p.MeasureCoverageWithin(scan)
				b.ReportMetric(100*res.Consistency, "consistency-%")
			}
		})
	}
}

// BenchmarkAblationSourceFiltering toggles Jio's source-only inspection:
// with any boxes scoped src-or-dst, outside vantage points start seeing
// them — the paper's explanation for Jio's zero outside coverage.
func BenchmarkAblationSourceFiltering(b *testing.B) {
	for _, srcOrDst := range []int{0, 2} {
		srcOrDst := srcOrDst
		b.Run(fmt.Sprintf("srcOrDstBoxes=%d", srcOrDst), func(b *testing.B) {
			cfg := ispnet.SmallConfig()
			for i := range cfg.Profiles {
				if cfg.Profiles[i].Name == "Jio" {
					cfg.Profiles[i].BoxesSrcOrDst = srcOrDst
				}
			}
			w := ispnet.NewWorld(cfg)
			p := probe.New(w, w.ISP("Jio"))
			scan := probe.ScanConfig{SampleURLs: 0, OutsideTargets: 1, PerURLTimeout: 600 * time.Millisecond}
			for i := 0; i < b.N; i++ {
				paths, poisoned := p.MeasureCoverageOutside(scan)
				if paths > 0 {
					b.ReportMetric(100*float64(poisoned)/float64(paths), "outside-coverage-%")
				}
			}
		})
	}
}

// BenchmarkAblationStatefulness measures the per-packet cost of the
// middlebox inspection pipeline (flow tracking + Host extraction), the
// price the paper notes wiretap boxes pay to search all flows.
func BenchmarkAblationStatefulness(b *testing.B) {
	payload := httpwire.NewGET("/").Header("Host", "blocked-site.example").Bytes()
	b.Run("extract-host", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			middlebox.ExtractHost(payload, false)
		}
	})
	b.Run("extract-host-covert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			middlebox.ExtractHost(payload, true)
		}
	})
}

// findBlockedPair locates a censored (domain, destination) pair.
func findBlockedPair(w *ispnet.World, isp *ispnet.ISP) (string, netip.Addr) {
	for _, d := range isp.HTTPList {
		if s, ok := w.Catalog.Site(d); ok && s.Kind == websim.KindNormal {
			if blocked, _ := w.HTTPTruthOnPath(isp.Client, s.Addr(websim.RegionIN), d); blocked {
				return d, s.Addr(websim.RegionIN)
			}
		}
	}
	for _, a := range w.Catalog.Alexa {
		for _, d := range isp.HTTPList {
			if blocked, _ := w.HTTPTruthOnPath(isp.Client, a.Addr(websim.RegionUS), d); blocked {
				return d, a.Addr(websim.RegionUS)
			}
		}
	}
	return "", netip.Addr{}
}
