package netbridge

import (
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/tcpsim"
)

// maxSegment is how much payload one bridge Write hands the TCP stack per
// segment — Ethernet-ish MSS, so captures of bridge traffic look like
// real flows and middleboxes see realistic segment boundaries.
const maxSegment = 1460

// Conn is a real net.Conn backed by a simulated TCP connection. Reads and
// writes block the calling goroutine while the pump advances virtual
// time; deadlines are wall-clock instants mapped 1:1 onto virtual time at
// the moment an operation starts (changing a deadline does not interrupt
// an operation already blocked).
type Conn struct {
	b            *Bridge
	tc           *tcpsim.Conn
	laddr, raddr net.Addr

	mu      sync.Mutex // guards the deadlines
	readDL  time.Time
	writeDL time.Time

	closed bool // pump-owned
}

var _ net.Conn = (*Conn)(nil)

// newConn wraps an established tcpsim connection. Pump context: snapshots
// the addresses and installs the wake hooks.
//
//repolint:pump
func newConn(b *Bridge, tc *tcpsim.Conn) *Conn {
	b.hookConn(tc)
	return &Conn{
		b:     b,
		tc:    tc,
		laddr: &net.TCPAddr{IP: tc.LocalAddr().AsSlice(), Port: int(tc.LocalPort())},
		raddr: &net.TCPAddr{IP: tc.RemoteAddr().AsSlice(), Port: int(tc.RemotePort())},
	}
}

// LocalAddr returns the bridge host's simulated address and port.
func (c *Conn) LocalAddr() net.Addr { return c.laddr }

// RemoteAddr returns the simulated peer's address and port.
func (c *Conn) RemoteAddr() net.Addr { return c.raddr }

// deadlineBudget converts an absolute deadline into a virtual-time budget
// for an operation starting now. expired means the deadline already
// passed.
func deadlineBudget(dl time.Time) (budget time.Duration, expired bool) {
	if dl.IsZero() {
		return 0, false
	}
	r := time.Until(dl)
	if r <= 0 {
		return 0, true
	}
	return r, false
}

// Read copies buffered stream bytes, blocking until data, EOF (peer FIN
// with the buffer drained), a reset, or the read deadline.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		var (
			n    int
			rerr error
			w    *waiter
		)
		err := c.b.do(func() {
			n, rerr = c.pumpRead(p)
			if n == 0 && rerr == nil {
				c.mu.Lock()
				budget, expired := deadlineBudget(c.readDL)
				c.mu.Unlock()
				if expired {
					rerr = os.ErrDeadlineExceeded
					return
				}
				w = c.b.addWaiter(c.readReady, budget, os.ErrDeadlineExceeded)
			}
		})
		if err != nil {
			return 0, c.opErr("read", err)
		}
		if n > 0 || rerr != nil {
			return n, c.opErr("read", rerr)
		}
		if werr := c.b.waitOn(nil, w); werr != nil {
			return 0, c.opErr("read", werr)
		}
	}
}

// pumpRead performs one non-blocking read attempt.
//
//repolint:pump
func (c *Conn) pumpRead(p []byte) (int, error) {
	if c.closed {
		return 0, net.ErrClosed
	}
	if buf := c.tc.ReadStream(); len(buf) > 0 {
		n := copy(p, buf)
		c.tc.Consume(n)
		return n, nil
	}
	if _, reset := c.tc.WasReset(); reset {
		return 0, syscall.ECONNRESET
	}
	if c.tc.PeerClosed() || c.tc.Dead() {
		return 0, io.EOF
	}
	return 0, nil
}

// readReady reports whether a read attempt would make progress.
//
//repolint:pump
func (c *Conn) readReady() bool {
	return c.closed || c.tc.Buffered() > 0 || c.tc.PeerClosed() || c.tc.Dead()
}

// Write sends p through the simulated connection in MSS-sized segments,
// blocking on the peer's receive window when it fills.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for total < len(p) {
		chunk := p[total:]
		if len(chunk) > maxSegment {
			chunk = chunk[:maxSegment]
		}
		var (
			sent int
			werr error
			w    *waiter
		)
		err := c.b.do(func() {
			sent, werr = c.pumpWrite(chunk)
			if sent == 0 && werr == nil {
				c.mu.Lock()
				budget, expired := deadlineBudget(c.writeDL)
				c.mu.Unlock()
				if expired {
					werr = os.ErrDeadlineExceeded
					return
				}
				w = c.b.addWaiter(c.writeReady, budget, os.ErrDeadlineExceeded)
			}
		})
		if err != nil {
			return total, c.opErr("write", err)
		}
		if werr != nil {
			return total, c.opErr("write", werr)
		}
		if sent == 0 {
			if werr := c.b.waitOn(nil, w); werr != nil {
				return total, c.opErr("write", werr)
			}
			continue
		}
		total += sent
	}
	return total, nil
}

// pumpWrite performs one non-blocking send attempt of at most one
// segment, bounded by the peer's advertised window minus what is already
// in flight. The payload is copied: the segment lives in the event queue
// after Write returns and callers are free to reuse their buffer.
//
//repolint:pump
func (c *Conn) pumpWrite(chunk []byte) (int, error) {
	if c.closed {
		return 0, net.ErrClosed
	}
	if _, reset := c.tc.WasReset(); reset {
		return 0, syscall.ECONNRESET
	}
	switch c.tc.State() {
	case tcpsim.StateEstablished, tcpsim.StateCloseWait:
	default:
		return 0, syscall.EPIPE
	}
	room := c.tc.PeerWindow() - c.tc.InFlight()
	if room <= 0 {
		return 0, nil
	}
	n := len(chunk)
	if n > room {
		n = room
	}
	buf := make([]byte, n)
	copy(buf, chunk[:n])
	c.tc.Send(buf)
	return n, nil
}

// writeReady reports whether a write attempt would make progress (or fail
// definitively).
//
//repolint:pump
func (c *Conn) writeReady() bool {
	if c.closed || c.tc.Dead() || c.tc.PeerWindow()-c.tc.InFlight() > 0 {
		return true
	}
	switch c.tc.State() {
	case tcpsim.StateEstablished, tcpsim.StateCloseWait:
		return false
	}
	return true
}

// Close sends FIN (when established) and releases any goroutine blocked
// on the connection. Double close is a no-op.
func (c *Conn) Close() error {
	return c.b.do(func() { c.pumpClose() })
}

//repolint:pump
func (c *Conn) pumpClose() {
	if c.closed {
		return
	}
	c.closed = true
	c.tc.Close()
	// Blocked readers and writers observe closed at the next sweep.
	c.b.wake = true
}

// SetDeadline sets both read and write deadlines. The zero time clears
// them. Deadlines apply to operations started after the call.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.mu.Unlock()
	return nil
}

// SetReadDeadline sets the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return nil
}

// SetWriteDeadline sets the write deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.mu.Unlock()
	return nil
}

// opErr wraps err in a *net.OpError, passing io.EOF and nil through bare
// as net.Conn contracts require.
func (c *Conn) opErr(op string, err error) error {
	if err == nil || err == io.EOF {
		return err
	}
	return &net.OpError{Op: op, Net: "tcp", Source: c.laddr, Addr: c.raddr, Err: err}
}
