package netbridge

import (
	"io"

	"repro/internal/pcapwire"
)

// PcapSink records every packet crossing a bridge endpoint's host into a
// classic libpcap stream (LINKTYPE_RAW, virtual timestamps) that
// Wireshark opens directly. Attach one with Dialer.CaptureTo; capture is
// per-vantage endpoint, so a listener on the same vantage is recorded by
// the same sink.
type PcapSink struct {
	b *Bridge // set on attach; accessors route through the pump after
	w *pcapwire.Writer
}

// NewPcapSink writes the pcap global header to w and returns the sink.
// The underlying writer is used only from the pump goroutine once
// attached; closing the bridge happens-before Close of the file is safe.
func NewPcapSink(w io.Writer) (*PcapSink, error) {
	pw, err := pcapwire.NewWriter(w)
	if err != nil {
		return nil, err
	}
	return &PcapSink{w: pw}, nil
}

// CaptureTo installs the sink as the endpoint's packet tap. One sink per
// vantage endpoint; attaching another replaces the first.
func (d *Dialer) CaptureTo(s *PcapSink) error {
	return d.b.do(func() {
		s.b = d.b
		d.pumpAttachTap(s)
	})
}

//repolint:pump
func (d *Dialer) pumpAttachTap(s *PcapSink) {
	d.ep.host.SetTap(s.w.Tap())
}

// Stats returns how many packets were recorded and the sticky first write
// error, if any. Safe to call while the capture is live.
func (s *PcapSink) Stats() (packets int, err error) {
	if s.b == nil {
		return s.w.Packets(), s.w.Err()
	}
	if derr := s.b.do(func() { packets, err = s.w.Packets(), s.w.Err() }); derr != nil {
		// Bridge already closed: the pump is gone, reads are race-free.
		return s.w.Packets(), s.w.Err()
	}
	return packets, err
}
