package netbridge

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/censor"
	"repro/internal/ispnet"
)

// blockPageMarker is the fragment of the Idea notification style every
// overt interception at that ISP carries.
const blockPageMarker = "This URL has been blocked under instructions of a"

func newSession(t *testing.T) *censor.Session {
	t.Helper()
	sess, err := censor.NewSession(context.Background(),
		censor.WithScenario(censor.MustLookupScenario("small")))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	return sess
}

func newBridge(t *testing.T, sess *censor.Session, opts ...Option) *Bridge {
	t.Helper()
	b, err := New(sess, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// ideaFilteredDomain finds a PBW domain ground-truth HTTP-filtered on
// Idea's path — deterministic for the scenario seed. Must be called
// before the bridge is opened (it reads the session world directly).
func ideaFilteredDomain(t *testing.T, w *ispnet.World) string {
	t.Helper()
	isp := w.ISP("Idea")
	for _, d := range w.Catalog.PBWDomains() {
		if w.TruthFor(isp, d).HTTPFiltered {
			return d
		}
	}
	t.Fatal("no HTTP-filtered PBW domain on Idea (scenario changed?)")
	return ""
}

// poisonedVantage finds an ISP whose default resolver poisons some PBW
// domain, and that domain.
func poisonedVantage(t *testing.T, w *ispnet.World) (string, string) {
	t.Helper()
	for _, name := range []string{"MTNL", "BSNL"} {
		isp := w.ISP(name)
		var def interface{ PoisonsDomain(string) bool }
		for _, r := range isp.Resolvers {
			if r.Addr() == isp.DefaultResolver {
				def = r
				break
			}
		}
		if def == nil {
			continue
		}
		for _, d := range w.Catalog.PBWDomains() {
			if def.PoisonsDomain(d) {
				return name, d
			}
		}
	}
	t.Skip("no poisoned default resolver in scenario (seed changed?)")
	return "", ""
}

// TestHTTPClientSeesBlockPage is the headline test: an unmodified
// net/http client dials through the bridge from the Idea vantage,
// requests a domain the paper's blocklist covers, and receives the
// interceptive middlebox's notification page.
func TestHTTPClientSeesBlockPage(t *testing.T) {
	sess := newSession(t)
	domain := ideaFilteredDomain(t, sess.World())
	b := newBridge(t, sess)

	d, err := b.Dialer("Idea")
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	client := &http.Client{Transport: &http.Transport{
		DialContext:       d.DialContext,
		DisableKeepAlives: true,
	}}
	resp, err := client.Get("http://" + domain + "/")
	if err != nil {
		t.Fatalf("GET http://%s/: %v", domain, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200 (overt interception mimics success)", resp.StatusCode)
	}
	if !strings.Contains(string(body), blockPageMarker) {
		t.Errorf("body is not the Idea block page:\n%s", body)
	}
}

// TestPoisonedResolve checks the DNS-censorship path: resolving a
// poisoned domain from a DNS-censoring vantage returns the ISP's block
// address, not the site, and dialing it goes nowhere.
func TestPoisonedResolve(t *testing.T) {
	sess := newSession(t)
	w := sess.World()
	vantage, domain := poisonedVantage(t, w)
	isp := w.ISP(vantage)
	site, ok := w.Catalog.Site(domain)
	if !ok {
		t.Fatalf("domain %s not in catalog", domain)
	}
	b := newBridge(t, sess)

	d, err := b.Dialer(vantage)
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	addrs, err := d.Resolve(context.Background(), domain)
	if err != nil {
		t.Fatalf("Resolve(%s): %v", domain, err)
	}
	real := site.Addr(w.RegionOf(d.Addr()))
	for _, a := range addrs {
		if a == real {
			t.Fatalf("poisoned resolve returned the site's real address %s", a)
		}
	}

	// The poisoned address must not serve anything: the usual answer is
	// the ISP's static block IP inside a dead prefix.
	d.Timeout = 2 * time.Second // virtual, costs no wall time
	_, derr := d.Dial("tcp", net.JoinHostPort(addrs[0].String(), "80"))
	if derr == nil {
		t.Fatalf("dial to poisoned answer %s unexpectedly succeeded", addrs[0])
	}
	if addrs[0] == isp.BlockIP {
		t.Logf("poisoned answer was the block IP %s (dial error: %v)", addrs[0], derr)
	}
}

// TestListenerEcho runs a real listener and a real dialer on two vantage
// ISPs and pushes data both ways through the simulated fabric.
func TestListenerEcho(t *testing.T) {
	sess := newSession(t)
	b := newBridge(t, sess)

	l, err := b.Listen("NKN", 9000)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer c.Close()
		if _, err := io.Copy(c, c); err != nil {
			t.Errorf("echo copy: %v", err)
		}
	}()

	d, err := b.Dialer("Sify")
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	laddr := l.Addr().(*net.TCPAddr)
	c, err := d.Dial("tcp", laddr.String())
	if err != nil {
		t.Fatalf("Dial %s: %v", laddr, err)
	}

	msg := bytes.Repeat([]byte("simulated wire bytes / "), 400) // ~9KB, multi-segment
	go func() {
		if _, err := c.Write(msg); err != nil {
			t.Errorf("Write: %v", err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echoed bytes differ from sent bytes")
	}
	c.Close()
	wg.Wait()
}

// TestDialUnknownVantageAndNetwork covers the error paths that never
// reach the simulation.
func TestDialUnknownVantageAndNetwork(t *testing.T) {
	sess := newSession(t)
	b := newBridge(t, sess)

	if _, err := b.Dialer("NoSuchISP"); err == nil {
		t.Error("Dialer accepted an unknown vantage")
	}
	d, err := b.Dialer("NKN")
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	if _, err := d.Dial("udp", "10.0.0.1:53"); err == nil {
		t.Error("Dial accepted a udp network")
	}
	if _, err := d.Dial("tcp", "not-an-address"); err == nil {
		t.Error("Dial accepted an unsplittable address")
	}
}

// TestDialTimeout dials a blackholed address and expects a timeout error
// after the virtual budget, nearly instantly in wall time.
func TestDialTimeout(t *testing.T) {
	sess := newSession(t)
	w := sess.World()
	blockIP := w.ISP("MTNL").BlockIP
	b := newBridge(t, sess)

	d, err := b.Dialer("MTNL")
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	d.Timeout = 3 * time.Second // virtual
	start := time.Now()
	_, derr := d.Dial("tcp", net.JoinHostPort(blockIP.String(), "80"))
	if derr == nil {
		t.Fatal("dial to the dead block prefix succeeded")
	}
	var opErr *net.OpError
	if !errors.As(derr, &opErr) || !opErr.Timeout() {
		t.Errorf("error = %v, want a timeout *net.OpError", derr)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Errorf("virtual 3s timeout took %v of wall time", wall)
	}
}

// TestContextCancelsDial verifies a context cancellation unblocks a dial
// promptly even though virtual time would have waited much longer.
func TestContextCancelsDial(t *testing.T) {
	sess := newSession(t)
	blockIP := sess.World().ISP("BSNL").BlockIP
	b := newBridge(t, sess)

	d, err := b.Dialer("BSNL")
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	// Unbounded in virtual time: only the context can end this dial. (Any
	// virtual deadline would fire within microseconds of wall time and
	// win the race against the cancel.)
	d.Timeout = -1
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond) // wall
		cancel()
	}()
	_, derr := d.DialContext(ctx, "tcp", net.JoinHostPort(blockIP.String(), "80"))
	if derr == nil {
		t.Fatal("cancelled dial succeeded")
	}
	if !errors.Is(derr, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", derr)
	}
}

// TestCloseUnblocks closes the bridge while goroutines are parked in
// Accept and Read; all must return ErrBridgeClosed-wrapped errors.
func TestCloseUnblocks(t *testing.T) {
	sess := newSession(t)
	b := newBridge(t, sess)

	l, err := b.Listen("NKN", 9001)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	errs := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond) // let Accept park
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-errs:
		if !errors.Is(err, ErrBridgeClosed) {
			t.Errorf("Accept after Close = %v, want ErrBridgeClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept still blocked after Close")
	}
	// Post-close operations fail fast.
	if _, err := b.Dialer("NKN"); !errors.Is(err, ErrBridgeClosed) {
		t.Errorf("Dialer after Close = %v, want ErrBridgeClosed", err)
	}
	// Measure works again once the bridge released the world.
	m, ok := censor.Lookup("dns")
	if !ok {
		t.Fatal("dns detector not registered")
	}
	if _, err := sess.Measure(context.Background(), "NKN", m, sess.World().Catalog.PBWDomains()[0]); err != nil {
		t.Errorf("Measure after Close: %v", err)
	}
}

// TestDeadlines checks read deadlines produce timeout errors.
func TestDeadlines(t *testing.T) {
	sess := newSession(t)
	b := newBridge(t, sess)

	l, err := b.Listen("NKN", 9002)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			defer c.Close()
			// Hold the connection open without sending.
			buf := make([]byte, 1)
			c.Read(buf)
		}
	}()
	d, err := b.Dialer("NKN")
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	laddr := l.Addr().(*net.TCPAddr)
	c, err := d.Dial("tcp", laddr.String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	_, rerr := c.Read(buf)
	var nerr net.Error
	if !errors.As(rerr, &nerr) || !nerr.Timeout() {
		t.Errorf("Read past deadline = %v, want a timeout net.Error", rerr)
	}
}

// TestPcapSink captures a bridge HTTP exchange and sanity-checks the pcap
// stream: classic magic, and at least SYN+request+response packets.
func TestPcapSink(t *testing.T) {
	sess := newSession(t)
	domain := ideaFilteredDomain(t, sess.World())
	b := newBridge(t, sess)

	d, err := b.Dialer("Idea")
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	var buf bytes.Buffer
	sink, err := NewPcapSink(&buf)
	if err != nil {
		t.Fatalf("NewPcapSink: %v", err)
	}
	if err := d.CaptureTo(sink); err != nil {
		t.Fatalf("CaptureTo: %v", err)
	}

	client := &http.Client{Transport: &http.Transport{
		DialContext:       d.DialContext,
		DisableKeepAlives: true,
	}}
	resp, err := client.Get("http://" + domain + "/")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	packets, serr := sink.Stats()
	if serr != nil {
		t.Fatalf("sink error: %v", serr)
	}
	if packets < 4 {
		t.Errorf("captured %d packets, want at least SYN/SYNACK/request/response", packets)
	}
	raw := buf.Bytes()
	if len(raw) < 24 {
		t.Fatalf("pcap stream only %d bytes", len(raw))
	}
	if got := uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24; got != 0xa1b2c3d4 {
		t.Errorf("pcap magic = %#x, want 0xa1b2c3d4", got)
	}
	if !bytes.Contains(raw, []byte("Host: "+domain)) {
		t.Error("capture does not contain the HTTP request")
	}
	if !bytes.Contains(raw, []byte(blockPageMarker)) {
		t.Error("capture does not contain the injected block page")
	}
}

// TestConcurrentDials exercises the pump under parallel dialers from
// multiple goroutines — the case -race exists for.
func TestConcurrentDials(t *testing.T) {
	sess := newSession(t)
	domain := ideaFilteredDomain(t, sess.World())
	b := newBridge(t, sess)

	d, err := b.Dialer("Idea")
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	client := &http.Client{Transport: &http.Transport{
		DialContext:       d.DialContext,
		DisableKeepAlives: true,
	}}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get("http://" + domain + "/")
			if err != nil {
				t.Errorf("GET: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if !strings.Contains(string(body), blockPageMarker) {
				t.Errorf("one of the concurrent GETs missed the block page")
			}
		}()
	}
	wg.Wait()
}

// TestBridgeHostAddressing pins the bridge host address contract: hosts
// seat in the ISP's first /24 at .210+, never colliding with the client
// at .100 or resolvers at .10+.
func TestBridgeHostAddressing(t *testing.T) {
	sess := newSession(t)
	b := newBridge(t, sess)
	d, err := b.Dialer("Airtel")
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	a := d.Addr()
	if !a.Is4() {
		t.Fatalf("bridge host addr %s is not IPv4", a)
	}
	b4 := a.As4()
	if b4[2] != 0 || b4[3] < 210 {
		t.Errorf("bridge host at %s, want x.y.0.210+", a)
	}
	if _, err := b.Dialer("Airtel"); err != nil {
		t.Errorf("second Dialer on same vantage: %v", err)
	}
	var _ netip.Addr = a
}
