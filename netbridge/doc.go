// Package netbridge seats real net.Conn and net.Listener endpoints on the
// simulated Indian internet, so unmodified standard-library clients —
// http.Transport above all — talk through the paper's censoring middleboxes
// as if they were on the wire.
//
// # How it works
//
// The simulation core is strictly single-threaded: one sim.Engine advances
// a virtual clock and every packet, timeout, and middlebox race runs as an
// engine callback on one goroutine. Real sockets are the opposite — many
// goroutines blocking in Read, Write, and Accept. The bridge reconciles
// the two with a pump: a single goroutine that owns the engine for the
// lifetime of the Bridge. Application goroutines never touch simulation
// state directly; they submit closures over an unbuffered channel and the
// pump executes them between engine runs, so the deterministic core never
// sees a foreign goroutine.
//
// A blocking operation (Read with an empty buffer, Accept with an empty
// backlog, a dial awaiting the handshake) registers a waiter: a readiness
// predicate plus an optional virtual-time deadline. The pump advances the
// engine in short leases of virtual time — sized by the next pending event
// so empty stretches are skipped in one hop — and sweeps the waiters after
// every lease and every submitted call. TCP-level hooks (data arrival,
// state changes, ACKs) cut a lease short the moment something a waiter
// could care about happens, so wake-ups land at exact virtual times.
//
// # Determinism boundary
//
// Everything inside the engine stays deterministic: packet interleavings,
// middlebox injection races, and timer orders are unchanged, and the
// .pcap files written by PcapSink use virtual timestamps. What the bridge
// gives up is *replay* determinism: when real goroutines decide what to
// send next, the wall-clock scheduler decides when calls reach the pump,
// so two runs of the same program may interleave their operations against
// virtual time differently. That is the documented boundary — campaigns
// and probes keep their byte-identical replays because they never go
// through a bridge; a bridge session is for interactive, stdlib-driven
// traffic where fidelity to real socket semantics matters more than
// replayability.
//
// # Usage
//
//	sess, _ := censor.NewSession(censor.WithScenario(sc))
//	bridge, _ := netbridge.New(sess)
//	defer bridge.Close()
//
//	d, _ := bridge.Dialer("Idea")
//	client := &http.Client{Transport: &http.Transport{
//		DialContext:       d.DialContext,
//		DisableKeepAlives: true,
//	}}
//	resp, _ := client.Get("http://blocked.example.in/")
//
// The Bridge holds the session's world (via censor.Session.AcquireWorld)
// until Close, so Measure calls on the same session block while a bridge
// is open.
//
//repolint:bridge
package netbridge
