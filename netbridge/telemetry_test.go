package netbridge

import (
	"bytes"
	"context"
	"testing"

	"repro/obs"
)

// TestBridgeTelemetry drives one resolve + dial through an instrumented
// bridge and checks the counters, the wake-latency histogram, and the
// virtual-time trace the pump records.
func TestBridgeTelemetry(t *testing.T) {
	sess := newSession(t)
	vantage, domain := poisonedVantage(t, sess.World())
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(nil) // clock bound to engine time by WithTrace
	b := newBridge(t, sess, WithTelemetry(reg), WithTrace(tracer))

	d, err := b.Dialer(vantage)
	if err != nil {
		t.Fatalf("Dialer: %v", err)
	}
	addrs, err := d.Resolve(context.Background(), domain)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	// The poisoned answer points at the block IP; the dial's outcome is
	// irrelevant here — it just has to pass through pumpConnect.
	conn, err := d.Dial("tcp", addrs[0].String()+":80")
	if err == nil {
		conn.Close()
	}

	if got := reg.Counter("netbridge_dials_total").Value(); got != 1 {
		t.Errorf("dials_total = %d, want 1", got)
	}
	// Every bridge operation is one pump call with a measured wake.
	if reg.Histogram("netbridge_wake_ns").Count() == 0 {
		t.Error("wake_ns histogram empty after bridge operations")
	}

	var lease, dial int
	var lastEnd int64
	for _, sp := range tracer.Spans() {
		switch {
		case sp.Cat == "pump" && sp.Name == "lease":
			lease++
			if sp.End < sp.Start {
				t.Errorf("unfinished lease span: %+v", sp)
			}
			if sp.End > lastEnd {
				lastEnd = sp.End
			}
		case sp.Cat == "bridge":
			dial++
		}
	}
	if lease == 0 {
		t.Error("no lease spans recorded")
	}
	if dial == 0 {
		t.Error("no dial spans recorded")
	}
	// Virtual timebase: a resolve plus a dial moves the engine well past
	// zero, and the span stamps must reflect engine time, not wall epoch.
	if eng := int64(b.eng.Now()); lastEnd == 0 || lastEnd > eng {
		t.Errorf("lease spans not on engine time: last end %d, engine now %d", lastEnd, eng)
	}

	var out bytes.Buffer
	if err := tracer.WriteChromeTrace(&out); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !bytes.Contains(out.Bytes(), []byte(`"cat":"pump"`)) {
		t.Errorf("trace export missing pump spans:\n%s", out.String())
	}
}
