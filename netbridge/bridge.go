package netbridge

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/censor"
	"repro/internal/ispnet"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/obs"
)

// ErrBridgeClosed is returned by operations submitted after Close, and
// delivered to every goroutine still blocked in one when Close runs.
var ErrBridgeClosed = errors.New("netbridge: bridge closed")

// Option configures a Bridge.
type Option func(*Bridge)

// WithLease sets the maximum virtual time the pump advances between
// waiter sweeps. Smaller leases tighten wake-up latency in virtual time;
// the default of one millisecond is already below every timing constant
// in the simulation.
func WithLease(d time.Duration) Option {
	return func(b *Bridge) {
		if d > 0 {
			b.lease = d
		}
	}
}

// WithDialTimeout sets the default virtual-time bound on connects and DNS
// resolutions (default 10s). Context deadlines tighten it per call.
func WithDialTimeout(d time.Duration) Option {
	return func(b *Bridge) {
		if d > 0 {
			b.dialTimeout = d
		}
	}
}

// WithTelemetry points the bridge's instruments at reg: pump wake latency
// (wall nanoseconds from call submission to pump pickup), lease cuts
// (engine leases ended early by a wake hook), dials and accepts. A nil
// registry leaves the instruments as no-ops.
func WithTelemetry(reg *obs.Registry) Option {
	return func(b *Bridge) { b.reg = reg }
}

// WithTrace records pump activity — engine leases and dial handshakes —
// into tr. The bridge rebinds the tracer's clock to the world engine's
// virtual time, so the exported trace lines up with pcap timestamps
// rather than wall time; hand the bridge a fresh tracer. Spans are only
// recorded on the pump goroutine.
func WithTrace(tr *obs.Tracer) Option {
	return func(b *Bridge) { b.tr = tr }
}

// Bridge owns a censor session's world and runs its engine on a single
// pump goroutine, exposing real net.Conn / net.Listener endpoints seated
// on bridge hosts inside the simulated ISPs. Close releases the world
// back to the session.
type Bridge struct {
	world   *ispnet.World
	release func()
	eng     *sim.Engine

	lease       time.Duration
	dialTimeout time.Duration

	// Telemetry: reg/tr are set by options; the instruments resolved from
	// them are nil-safe no-ops when absent.
	reg        *obs.Registry
	tr         *obs.Tracer
	hWake      *obs.Histogram
	cLeaseCuts *obs.Counter
	cDials     *obs.Counter
	cAccepts   *obs.Counter

	calls     chan *call
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	// Everything below is owned by the pump goroutine.
	waiters map[*waiter]struct{}
	wake    bool
	eps     map[string]*endpoint
}

// call is one closure submitted to the pump. done is closed after fn ran;
// submitted stamps the hand-off so the pump can measure its wake latency.
type call struct {
	fn        func()
	done      chan struct{}
	submitted time.Time
}

// waiter is a parked blocking operation: ready is polled by the pump
// after every call and every engine lease; the optional timer bounds the
// wait in virtual time. Exactly one result is ever sent on ch.
type waiter struct {
	ready      func() bool
	timer      sim.Timer
	hasTimer   bool
	timeoutErr error
	timedOut   bool
	done       bool
	ch         chan error
}

// New acquires sess's world and starts the pump. The session's Measure
// blocks until Close; campaigns, which run on replica worlds, do not.
func New(sess *censor.Session, opts ...Option) (*Bridge, error) {
	world, release := sess.AcquireWorld()
	b := &Bridge{
		world:       world,
		release:     release,
		eng:         world.Eng,
		lease:       time.Millisecond,
		dialTimeout: 10 * time.Second,
		calls:       make(chan *call),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		waiters:     make(map[*waiter]struct{}),
		eps:         make(map[string]*endpoint),
	}
	for _, o := range opts {
		o(b)
	}
	b.hWake = b.reg.Histogram("netbridge_wake_ns")
	b.cLeaseCuts = b.reg.Counter("netbridge_lease_cuts_total")
	b.cDials = b.reg.Counter("netbridge_dials_total")
	b.cAccepts = b.reg.Counter("netbridge_accepts_total")
	// The clock is rebound before the pump starts, so every span the pump
	// records carries engine virtual time.
	b.tr.SetClock(b.virtualNow)
	go b.pump()
	return b, nil
}

// virtualNow is the trace clock: the world engine's current virtual time
// in nanoseconds. Only the pump records spans, so only the pump calls it.
//
//repolint:pump
func (b *Bridge) virtualNow() int64 { return int64(b.eng.Now()) }

// Close shuts down the pump, fails every blocked operation with
// ErrBridgeClosed, detaches the bridge hosts, and releases the session
// world. It is idempotent and safe to call concurrently with any
// operation.
func (b *Bridge) Close() error {
	b.closeOnce.Do(func() {
		close(b.stop)
		<-b.done
		b.release()
	})
	return nil
}

// do submits fn to the pump and blocks until it ran. It is the only way
// application goroutines reach simulation state; fn must not block.
func (b *Bridge) do(fn func()) error {
	c := &call{fn: fn, done: make(chan struct{}), submitted: time.Now()}
	select {
	case b.calls <- c:
		<-c.done
		return nil
	case <-b.done:
		return ErrBridgeClosed
	}
}

// runCall executes one submitted call on the pump, recording the wall
// time the caller spent waiting for the pump to pick it up — the wake
// latency an application goroutine pays per bridge operation.
//
//repolint:pump
func (b *Bridge) runCall(c *call) {
	b.hWake.Observe(time.Since(c.submitted).Nanoseconds())
	c.fn()
	close(c.done)
}

// pump is the bridge's engine-owning goroutine: it alternates between
// executing submitted calls and advancing virtual time, sweeping waiters
// after each, and parks on the call channel whenever nothing is blocked
// or the event queue is empty.
//
//repolint:pump
func (b *Bridge) pump() {
	defer close(b.done)
	for {
		b.drainCalls()
		select {
		case <-b.stop:
			b.shutdown()
			return
		default:
		}
		b.sweep()
		if len(b.waiters) == 0 || !b.advance() {
			// Nothing is waiting, or no event can change anything until a
			// new call arrives: park.
			select {
			case c := <-b.calls:
				b.runCall(c)
			case <-b.stop:
				b.shutdown()
				return
			}
		}
	}
}

// drainCalls executes every queued call without blocking.
func (b *Bridge) drainCalls() {
	for {
		select {
		case c := <-b.calls:
			b.runCall(c)
		default:
			return
		}
	}
}

// shutdown fails all waiters and detaches every endpoint. Runs on the
// pump, as its last act; after it returns, done closes and no call can
// rendezvous anymore.
//
//repolint:pump
func (b *Bridge) shutdown() {
	b.drainCalls()
	for w := range b.waiters {
		b.finish(w, ErrBridgeClosed)
	}
	for _, ep := range b.eps {
		ep.detach()
	}
}

// advance runs the engine for one lease of virtual time, stopping early
// when a hook signals a wake, and sweeps the waiters. It reports false
// when the event queue is empty (virtual time cannot move on its own).
//
//repolint:pump
func (b *Bridge) advance() bool {
	next, ok := b.eng.NextAt()
	if !ok {
		return false
	}
	slice := b.lease
	// Jump empty stretches in one hop: run at least up to the next event.
	if gap := next.Sub(b.eng.Now()); gap > slice {
		slice = gap
	}
	b.wake = false
	span := b.tr.Start("lease", "pump", 0)
	_ = b.eng.RunUntil(slice, b.wakeCond)
	b.tr.Finish(span)
	if b.wake {
		// A hook ended the lease early: a waiter's event landed mid-slice.
		b.cLeaseCuts.Inc()
	}
	b.sweep()
	return true
}

func (b *Bridge) wakeCond() bool { return b.wake }

// addWaiter parks a blocking operation. d > 0 arms a virtual-time
// deadline that resolves the waiter with timeoutErr.
//
//repolint:pump
func (b *Bridge) addWaiter(ready func() bool, d time.Duration, timeoutErr error) *waiter {
	w := &waiter{ready: ready, ch: make(chan error, 1)}
	if d > 0 {
		w.timeoutErr = timeoutErr
		w.timer = b.eng.Schedule(d, func() {
			w.timedOut = true
			b.wake = true
		})
		w.hasTimer = true
	}
	b.waiters[w] = struct{}{}
	return w
}

// sweep resolves every waiter whose condition came true or whose virtual
// deadline fired.
//
//repolint:pump
func (b *Bridge) sweep() {
	for w := range b.waiters {
		switch {
		case w.ready():
			b.finish(w, nil)
		case w.timedOut:
			b.finish(w, w.timeoutErr)
		}
	}
}

// finish resolves a waiter exactly once with err (nil meaning "ready").
//
//repolint:pump
func (b *Bridge) finish(w *waiter, err error) {
	if w.done {
		return
	}
	w.done = true
	if w.hasTimer {
		w.timer.Stop()
	}
	delete(b.waiters, w)
	w.ch <- err
}

// waitOn blocks the calling (application) goroutine until the waiter
// resolves. A non-nil ctx can cancel the wait; cancellation is serialized
// through the pump, so if the operation wins the race its result stands.
func (b *Bridge) waitOn(ctx context.Context, w *waiter) error {
	if ctx == nil {
		return <-w.ch
	}
	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		cerr := ctx.Err()
		if err := b.do(func() { b.finish(w, cerr) }); err != nil {
			return err
		}
		return <-w.ch
	}
}

// hookConn points a tcpsim connection's event hooks at the pump's wake
// flag so leases end the moment data, an ACK, or a state change lands.
//
//repolint:pump
func (b *Bridge) hookConn(tc *tcpsim.Conn) {
	tc.OnData = b.connEvent
	tc.OnStateChange = b.connEvent
	tc.OnAck = b.connEvent
}

//repolint:pump
func (b *Bridge) connEvent(*tcpsim.Conn) { b.wake = true }
