package netbridge

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"os"
	"strconv"
	"syscall"
	"time"

	"repro/internal/dnssim"
	"repro/internal/dnswire"
	"repro/internal/ispnet"
	"repro/internal/netsim"
	"repro/internal/tcpsim"
)

// endpoint is one bridge host seated inside a vantage ISP: a netsim host
// on the ISP's access edge with a TCP stack and a DNS client. Endpoints
// are created lazily per vantage and live until the bridge closes. All
// fields are pump-owned after construction except addr, which is
// immutable.
type endpoint struct {
	b     *Bridge
	name  string
	isp   *ispnet.ISP
	host  *netsim.Host
	stack *tcpsim.Stack
	dns   *dnssim.Client
	addr  netip.Addr
}

// pumpEndpoint returns the vantage's endpoint, attaching a bridge host on
// first use.
//
//repolint:pump
func (b *Bridge) pumpEndpoint(vantage string) (*endpoint, error) {
	if ep, ok := b.eps[vantage]; ok {
		return ep, nil
	}
	isp := b.world.ISP(vantage)
	if isp == nil {
		return nil, fmt.Errorf("netbridge: unknown vantage ISP %q", vantage)
	}
	host, err := b.world.AttachBridgeHost(isp)
	if err != nil {
		return nil, err
	}
	ep := &endpoint{
		b:     b,
		name:  vantage,
		isp:   isp,
		host:  host,
		stack: tcpsim.NewStack(host),
		dns:   dnssim.NewClient(host),
		addr:  host.Addr(),
	}
	b.eps[vantage] = ep
	return ep, nil
}

// detach removes the endpoint's host from the simulated network. Pump
// context, called from shutdown.
//
//repolint:pump
func (ep *endpoint) detach() {
	ep.host.SetTap(nil)
	ep.b.world.DetachBridgeHost(ep.host)
}

// Dialer dials TCP connections from one vantage ISP's bridge endpoint,
// resolving names through that ISP's default (possibly poisoned)
// resolver. Its DialContext slots directly into http.Transport.
type Dialer struct {
	b  *Bridge
	ep *endpoint

	// Timeout bounds connects and resolutions in virtual time; zero means
	// the bridge default, negative means no virtual bound at all (the
	// caller cancels via context — note that virtual deadlines usually
	// fire in microseconds of wall time, so an unbounded dial is the only
	// way a wall-clock cancellation can win the race). Context deadlines
	// tighten the bound per call.
	Timeout time.Duration
}

// Dialer returns a dialer seated in the named vantage ISP, attaching the
// bridge host on first use.
func (b *Bridge) Dialer(vantage string) (*Dialer, error) {
	var ep *endpoint
	var eerr error
	if err := b.do(func() { ep, eerr = b.pumpEndpoint(vantage) }); err != nil {
		return nil, err
	}
	if eerr != nil {
		return nil, eerr
	}
	return &Dialer{b: b, ep: ep}, nil
}

// Addr returns the simulated address the dialer's endpoint is seated at.
func (d *Dialer) Addr() netip.Addr { return d.ep.addr }

// timeoutFor computes the virtual-time budget for one dial or resolve:
// the dialer timeout tightened by ctx's deadline (wall remaining mapped
// 1:1 onto virtual time). Zero means unbounded; negative means the
// deadline already passed.
func (d *Dialer) timeoutFor(ctx context.Context) time.Duration {
	t := d.Timeout
	if t == 0 {
		t = d.b.dialTimeout
	}
	if t < 0 {
		t = 0 // unbounded: cancellation is the caller's job
	}
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok {
			r := time.Until(dl)
			if r <= 0 {
				return -1
			}
			if t == 0 || r < t {
				t = r
			}
		}
	}
	return t
}

// Resolve queries the vantage ISP's default resolver for domain and
// returns the answer addresses. On censored paths this surfaces exactly
// what a subscriber sees: poisoned answers pointing at the ISP's block
// IP. NXDOMAIN and empty answers return a *net.DNSError.
func (d *Dialer) Resolve(ctx context.Context, domain string) ([]netip.Addr, error) {
	budget := d.timeoutFor(ctx)
	if budget < 0 {
		return nil, d.dnsError(domain, context.DeadlineExceeded.Error(), true)
	}
	var (
		addrs []netip.Addr
		rcode dnswire.RCode
		got   bool
		w     *waiter
	)
	err := d.b.do(func() {
		w = d.pumpResolve(domain, budget, &addrs, &rcode, &got)
	})
	if err != nil {
		return nil, err
	}
	if werr := d.b.waitOn(ctx, w); werr != nil {
		return nil, d.dnsError(domain, werr.Error(), os.IsTimeout(werr))
	}
	if rcode != dnswire.RCodeNoError {
		return nil, d.dnsError(domain, rcode.String(), false)
	}
	if len(addrs) == 0 {
		return nil, d.dnsError(domain, "no answers", false)
	}
	return addrs, nil
}

// pumpResolve fires the async query and parks a waiter on its completion.
//
//repolint:pump
func (d *Dialer) pumpResolve(domain string, budget time.Duration, addrs *[]netip.Addr, rcode *dnswire.RCode, got *bool) *waiter {
	b := d.b
	d.ep.dns.QueryAsync(d.ep.isp.DefaultResolver, domain, func(m *dnswire.Message, _ netip.Addr) {
		*rcode = m.RCode
		for _, a := range m.Answers {
			*addrs = append(*addrs, a.Addr)
		}
		*got = true
		b.wake = true
	})
	return b.addWaiter(func() bool { return *got }, budget, os.ErrDeadlineExceeded)
}

func (d *Dialer) dnsError(domain, msg string, timeout bool) error {
	return &net.DNSError{
		Err:        msg,
		Name:       domain,
		Server:     d.ep.isp.DefaultResolver.String(),
		IsTimeout:  timeout,
		IsNotFound: !timeout,
	}
}

// Dial connects like net.Dial. Only "tcp" (and "tcp4") networks are
// supported; the simulated internet is IPv4.
func (d *Dialer) Dial(network, address string) (net.Conn, error) {
	return d.DialContext(context.Background(), network, address)
}

// DialContext resolves address through the vantage ISP's resolver when it
// is a name, completes the TCP handshake inside the simulation, and
// returns a net.Conn backed by the bridge. It has the http.Transport
// DialContext signature.
func (d *Dialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	switch network {
	case "tcp", "tcp4":
	default:
		return nil, &net.OpError{Op: "dial", Net: network,
			Err: net.UnknownNetworkError(network)}
	}
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return nil, err
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return nil, &net.OpError{Op: "dial", Net: network,
			Err: fmt.Errorf("invalid port %q", portStr)}
	}
	addr, aerr := netip.ParseAddr(host)
	if aerr != nil {
		addrs, rerr := d.Resolve(ctx, host)
		if rerr != nil {
			return nil, rerr
		}
		addr = addrs[0]
	}

	budget := d.timeoutFor(ctx)
	if budget < 0 {
		return nil, d.opError("dial", addr, uint16(port), os.ErrDeadlineExceeded)
	}
	var (
		tc   *tcpsim.Conn
		w    *waiter
		span int
	)
	if err := d.b.do(func() { tc, w, span = d.pumpConnect(addr, uint16(port), budget) }); err != nil {
		return nil, err
	}
	if werr := d.b.waitOn(ctx, w); werr != nil {
		// Timed out or cancelled: tear the half-open connection down.
		_ = d.b.do(func() { d.pumpAbort(tc, span) })
		return nil, d.opError("dial", addr, uint16(port), werr)
	}
	var c *Conn
	var derr error
	if err := d.b.do(func() { c, derr = d.pumpFinishDial(tc, span) }); err != nil {
		return nil, err
	}
	if derr != nil {
		return nil, d.opError("dial", addr, uint16(port), derr)
	}
	return c, nil
}

// pumpConnect starts the handshake, opens a dial trace span (finished by
// pumpFinishDial or pumpAbort), and parks a waiter on the outcome.
//
//repolint:pump
func (d *Dialer) pumpConnect(addr netip.Addr, port uint16, budget time.Duration) (*tcpsim.Conn, *waiter, int) {
	d.b.cDials.Inc()
	span := d.b.tr.Start("dial "+d.ep.name, "bridge", 0)
	tc := d.ep.stack.Connect(addr, port)
	d.b.hookConn(tc)
	w := d.b.addWaiter(func() bool { return tc.Established() || tc.Dead() },
		budget, os.ErrDeadlineExceeded)
	return tc, w, span
}

//repolint:pump
func (d *Dialer) pumpAbort(tc *tcpsim.Conn, span int) {
	tc.Abort()
	d.b.tr.Finish(span)
}

// pumpFinishDial inspects the handshake outcome and wraps the live
// connection.
//
//repolint:pump
func (d *Dialer) pumpFinishDial(tc *tcpsim.Conn, span int) (*Conn, error) {
	d.b.tr.Finish(span)
	if _, reset := tc.WasReset(); reset {
		return nil, syscall.ECONNREFUSED
	}
	if tc.Dead() {
		return nil, syscall.ECONNABORTED
	}
	return newConn(d.b, tc), nil
}

func (d *Dialer) opError(op string, addr netip.Addr, port uint16, err error) error {
	return &net.OpError{
		Op:     op,
		Net:    "tcp",
		Source: &net.TCPAddr{IP: d.ep.addr.AsSlice()},
		Addr:   &net.TCPAddr{IP: addr.AsSlice(), Port: int(port)},
		Err:    err,
	}
}
