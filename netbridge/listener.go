package netbridge

import (
	"net"

	"repro/internal/tcpsim"
)

// Listener is a real net.Listener seated on a vantage ISP's bridge host.
// Accept blocks the calling goroutine until a simulated peer completes a
// handshake against the port.
type Listener struct {
	b    *Bridge
	ep   *endpoint
	port uint16
	addr net.Addr

	// Pump-owned.
	backlog []*tcpsim.Conn
	closed  bool
}

var _ net.Listener = (*Listener)(nil)

// Listen opens a TCP listener on the named vantage's bridge host. The
// bridge host is attached on first use; the port must not already have a
// bridge listener.
func (b *Bridge) Listen(vantage string, port uint16) (*Listener, error) {
	var l *Listener
	var lerr error
	if err := b.do(func() { l, lerr = b.pumpListen(vantage, port) }); err != nil {
		return nil, err
	}
	return l, lerr
}

//repolint:pump
func (b *Bridge) pumpListen(vantage string, port uint16) (*Listener, error) {
	ep, err := b.pumpEndpoint(vantage)
	if err != nil {
		return nil, err
	}
	l := &Listener{
		b:    b,
		ep:   ep,
		port: port,
		addr: &net.TCPAddr{IP: ep.addr.AsSlice(), Port: int(port)},
	}
	ep.stack.Listen(port, func(tc *tcpsim.Conn) {
		// Established: hook before any piggybacked data is processed so
		// the first OnData still lands.
		b.hookConn(tc)
		l.backlog = append(l.backlog, tc)
		b.wake = true
	})
	return l, nil
}

// Addr returns the listener's simulated address.
func (l *Listener) Addr() net.Addr { return l.addr }

// Accept blocks until a simulated peer connects, returning the accepted
// connection as a net.Conn.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		var (
			c    *Conn
			aerr error
			w    *waiter
		)
		err := l.b.do(func() {
			c, aerr = l.pumpAccept()
			if c == nil && aerr == nil {
				w = l.b.addWaiter(l.acceptReady, 0, nil)
			}
		})
		if err != nil {
			return nil, l.acceptErr(err)
		}
		if aerr != nil {
			return nil, l.acceptErr(aerr)
		}
		if c != nil {
			return c, nil
		}
		if werr := l.b.waitOn(nil, w); werr != nil {
			return nil, l.acceptErr(werr)
		}
	}
}

// pumpAccept pops the backlog without blocking.
//
//repolint:pump
func (l *Listener) pumpAccept() (*Conn, error) {
	if l.closed {
		return nil, net.ErrClosed
	}
	if len(l.backlog) == 0 {
		return nil, nil
	}
	tc := l.backlog[0]
	l.backlog = l.backlog[1:]
	l.b.cAccepts.Inc()
	return newConn(l.b, tc), nil
}

//repolint:pump
func (l *Listener) acceptReady() bool { return l.closed || len(l.backlog) > 0 }

// Close stops the listener and releases goroutines blocked in Accept.
// Connections already accepted (or established and waiting in the
// backlog) are aborted if still in the backlog.
func (l *Listener) Close() error {
	return l.b.do(func() { l.pumpCloseListener() })
}

//repolint:pump
func (l *Listener) pumpCloseListener() {
	if l.closed {
		return
	}
	l.closed = true
	l.ep.stack.Listen(l.port, nil)
	for _, tc := range l.backlog {
		tc.Abort()
	}
	l.backlog = nil
	l.b.wake = true
}

func (l *Listener) acceptErr(err error) error {
	return &net.OpError{Op: "accept", Net: "tcp", Addr: l.addr, Err: err}
}
